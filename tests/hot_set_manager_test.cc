// Unit tests for the hot-set subsystem (topk::HotSetManager): protocol-safe
// epoch transitions, deferred evictions, the fill stash, the install barrier
// and the coordinator's unsettled-key filter.  The manager is driven directly
// with a real cache and engine; outgoing protocol messages land in a
// recording sink, as in protocol_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/protocol/engine.h"
#include "src/store/partition.h"
#include "src/topk/hot_set_host.h"
#include "src/topk/hot_set_manager.h"

namespace cckvs {
namespace {

// Collects broadcasts; the test feeds acks back by hand.
class RecordingSink : public MessageSink {
 public:
  void BroadcastUpdate(const UpdateMsg& msg) override { updates.push_back(msg); }
  void BroadcastInvalidate(const InvalidateMsg& msg) override {
    invalidations.push_back(msg);
  }
  void SendAck(NodeId to, const AckMsg& msg) override {
    (void)to;
    acks.push_back(msg);
  }

  std::vector<UpdateMsg> updates;
  std::vector<InvalidateMsg> invalidations;
  std::vector<AckMsg> acks;
};

// Two-"node" world from node 0's perspective: keys with even ids home at 0.
constexpr int kNodes = 2;
NodeId HomeOf(Key key) { return static_cast<NodeId>(key % kNodes); }

struct Harness {
  explicit Harness(ConsistencyModel model, bool coordinator = false,
                   std::uint64_t requests_per_epoch = 4,
                   std::size_t hot_set_size = 8) {
    cache = std::make_unique<SymmetricCache>(hot_set_size);
    if (model == ConsistencyModel::kLin) {
      engine = std::make_unique<LinEngine>(0, kNodes, cache.get(), &sink);
    } else {
      engine = std::make_unique<ScEngine>(0, kNodes, cache.get(), &sink);
    }
    HotSetManagerConfig hc;
    hc.self = 0;
    hc.num_nodes = kNodes;
    hc.coordinator = coordinator;
    hc.epoch.hot_set_size = hot_set_size;
    hc.epoch.requests_per_epoch = requests_per_epoch;
    hc.epoch.sample_probability = 1.0;
    hc.home_of = HomeOf;
    mgr = std::make_unique<HotSetManager>(hc, cache.get(), engine.get());
  }

  void Seed(std::initializer_list<Key> keys) {
    cache->InstallHotSet(std::vector<Key>(keys));
    for (const Key k : keys) {
      cache->Fill(k, "seed", Timestamp{1, 1});
    }
  }

  RecordingSink sink;
  std::unique_ptr<SymmetricCache> cache;
  std::unique_ptr<CoherenceEngine> engine;
  std::unique_ptr<HotSetManager> mgr;
};

TEST(HotSetManager, ApplySplitsEvictionsAdmissionsAndDuties) {
  Harness h(ConsistencyModel::kSc);
  h.Seed({2, 3, 4});
  h.cache->Find(2)->dirty = true;  // pretend a hot write landed

  const auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {4, 6, 7}});
  // Key 2: evicted, dirty, homed here -> write-back + gate; key 3: evicted,
  // clean, homed at the peer -> dropped.
  ASSERT_EQ(t.home_writebacks.size(), 1u);
  EXPECT_EQ(t.home_writebacks[0].key, 2u);
  EXPECT_TRUE(h.mgr->ShardGated(2));
  EXPECT_FALSE(h.mgr->ShardGated(3));
  EXPECT_EQ(h.cache->Find(2), nullptr);
  EXPECT_EQ(h.cache->Find(3), nullptr);
  // Key 4 survives with its value; 6 and 7 enter kFilling; only 6 homes here.
  EXPECT_EQ(h.cache->Find(4)->state(), CacheState::kValid);
  EXPECT_EQ(h.cache->Find(6)->state(), CacheState::kFilling);
  EXPECT_EQ(t.fill_duties, std::vector<Key>{6});
  // Nothing deferred: the install completed.
  EXPECT_TRUE(t.installed_advanced);
  EXPECT_EQ(t.installed_epoch, 1u);
  EXPECT_EQ(h.mgr->installed_epoch(), 1u);
}

TEST(HotSetManager, BarrierLiftsGateOnlyAfterAllPeersInstall) {
  Harness h(ConsistencyModel::kSc);
  h.Seed({2});
  auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {3}});
  EXPECT_TRUE(t.installed_advanced);
  EXPECT_TRUE(h.mgr->ShardGated(2));
  EXPECT_TRUE(t.ungated.empty());  // peer has not confirmed epoch 1

  const auto ungated = h.mgr->OnPeerInstalled(1, 1);
  EXPECT_EQ(ungated, std::vector<Key>{2});
  EXPECT_FALSE(h.mgr->ShardGated(2));
}

TEST(HotSetManager, LinWriteInFlightDefersEviction) {
  Harness h(ConsistencyModel::kLin);
  h.Seed({2});
  h.engine->Write(2, "w", nullptr);  // invalidations out, acks pending
  ASSERT_EQ(h.sink.invalidations.size(), 1u);

  auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {4}});
  EXPECT_TRUE(h.mgr->HasDeferred());
  EXPECT_FALSE(t.installed_advanced);  // the epoch is not installed yet
  EXPECT_NE(h.cache->Find(2), nullptr);
  EXPECT_FALSE(h.mgr->ShardGated(2));  // not evicted, so not pending a clear

  // The ack completes the write; the deferred eviction can now go through.
  h.engine->OnAck(1, AckMsg{2, h.sink.invalidations[0].ts});
  t = h.mgr->RetryDeferred();
  EXPECT_FALSE(h.mgr->HasDeferred());
  EXPECT_TRUE(t.installed_advanced);
  ASSERT_EQ(t.home_writebacks.size(), 1u);  // the completed write is dirty
  EXPECT_EQ(t.home_writebacks[0].key, 2u);
  EXPECT_TRUE(h.mgr->ShardGated(2));
  EXPECT_EQ(h.cache->Find(2), nullptr);
}

TEST(HotSetManager, ParkedReaderDefersEvictionUntilFill) {
  Harness h(ConsistencyModel::kSc);
  auto t0 = h.mgr->Apply(HotSetAnnounceMsg{1, {3}});  // admitted, kFilling
  (void)t0;
  bool read_done = false;
  Value read_value;
  h.engine->Read(3, nullptr, nullptr, [&](const Value& v, Timestamp) {
    read_done = true;
    read_value = v;
  });
  EXPECT_FALSE(read_done);  // parked on the unfilled entry

  auto t = h.mgr->Apply(HotSetAnnounceMsg{2, {5}});  // epoch churns 3 out
  EXPECT_TRUE(h.mgr->HasDeferred());
  EXPECT_FALSE(t.installed_advanced);

  // The fill (sent when the home installed epoch 1) wakes the reader...
  h.mgr->ApplyFill(FillMsg{3, "filled", Timestamp{2, 1}, 1});
  EXPECT_TRUE(read_done);
  EXPECT_EQ(read_value, "filled");
  // ...and the deferred eviction drains.
  t = h.mgr->RetryDeferred();
  EXPECT_FALSE(h.mgr->HasDeferred());
  EXPECT_TRUE(t.installed_advanced);
  EXPECT_EQ(h.cache->Find(3), nullptr);
}

TEST(HotSetManager, FillThatBeatsItsAnnounceIsStashed) {
  Harness h(ConsistencyModel::kSc);
  // Epoch 1's announce has not arrived, but the home's fill has.
  EXPECT_FALSE(h.mgr->ApplyFill(FillMsg{5, "early", Timestamp{3, 1}, 1}));
  EXPECT_EQ(h.cache->Find(5), nullptr);

  h.mgr->Apply(HotSetAnnounceMsg{1, {5}});
  ASSERT_NE(h.cache->Find(5), nullptr);
  EXPECT_EQ(h.cache->Find(5)->state(), CacheState::kValid);
  EXPECT_EQ(h.cache->Find(5)->value, "early");
}

TEST(HotSetManager, StaleFillIsDropped) {
  Harness h(ConsistencyModel::kSc);
  h.mgr->Apply(HotSetAnnounceMsg{2, {7}});
  // A fill from epoch 1 for a key that is no longer (or never was) targeted.
  EXPECT_FALSE(h.mgr->ApplyFill(FillMsg{9, "stale", Timestamp{1, 1}, 1}));
  h.mgr->Apply(HotSetAnnounceMsg{3, {9}});
  // The stale fill must not have survived to satisfy epoch 3's admission.
  EXPECT_EQ(h.cache->Find(9)->state(), CacheState::kFilling);
}

TEST(HotSetManager, CoordinatorWithholdsUnsettledReadmissions) {
  // hot_set_size 1, epochs every 2 requests: publications are predictable.
  Harness h(ConsistencyModel::kSc, /*coordinator=*/true,
            /*requests_per_epoch=*/2, /*hot_set_size=*/1);
  EXPECT_FALSE(h.mgr->Sample(1));
  ASSERT_TRUE(h.mgr->Sample(1));  // epoch 1: {1}
  EXPECT_EQ(h.mgr->announcement().keys, std::vector<Key>{1});
  h.mgr->Apply(h.mgr->announcement());

  h.mgr->Sample(2);
  ASSERT_TRUE(h.mgr->Sample(2));  // epoch 2: {2}, key 1 dropped
  EXPECT_EQ(h.mgr->announcement().keys, std::vector<Key>{2});
  // Do NOT apply epoch 2 yet: key 1's eviction is unsettled rack-wide.

  h.mgr->Sample(1);
  ASSERT_TRUE(h.mgr->Sample(1));  // epoch 3: key 1 is hottest again...
  for (const Key k : h.mgr->announcement().keys) {
    EXPECT_NE(k, 1u) << "unsettled key must not be re-admitted";
  }

  // Settle: this node installs epoch 3 (evicting 2...), the peer confirms.
  h.mgr->Apply(h.mgr->announcement());
  h.mgr->OnPeerInstalled(1, h.mgr->announcement().epoch);
  h.mgr->Sample(1);
  ASSERT_TRUE(h.mgr->Sample(1));  // epoch 4: key 1 is eligible again
  EXPECT_EQ(h.mgr->announcement().keys, std::vector<Key>{1});
}

TEST(HotSetManager, ReadmissionCancelsPendingGateClear) {
  // Key 2 (homed here) is evicted in epoch 1 and re-admitted in epoch 2
  // before the epoch-1 barrier completes.  The straggling install
  // confirmation must NOT clear the gate: the new cached era owns it.
  Harness h(ConsistencyModel::kSc);
  h.Seed({2});
  h.mgr->Apply(HotSetAnnounceMsg{1, {4}});
  EXPECT_TRUE(h.mgr->ShardGated(2));
  const auto t = h.mgr->Apply(HotSetAnnounceMsg{2, {2, 4}});
  EXPECT_EQ(t.fill_duties, std::vector<Key>{2});
  EXPECT_FALSE(h.mgr->ShardGated(2));  // no stale pending clear remains

  const auto ungated = h.mgr->OnPeerInstalled(1, 1);  // epoch-1 straggler
  EXPECT_TRUE(ungated.empty()) << "the re-admitted key's gate must stay up";
}

// ---------------------------------------------------------------------------
// The shared host hooks: ONE transition machine, two host styles
// ---------------------------------------------------------------------------

// A fake host over a real Partition shard.  `batch_publish` mimics the sim
// host (one PublishFills call may carry many fills, shipped chunked) vs. the
// live host (per-fill broadcast); everything observable must be identical.
class FakeHost : public HotSetHost {
 public:
  explicit FakeHost(bool batch_publish) : batch_publish_(batch_publish) {
    PartitionConfig pc;
    pc.buckets = 16;
    pc.node_id = 0;
    pc.synthesize = [](Key) { return Value("shard"); };
    partition_ = std::make_unique<Partition>(pc);
  }

  void ApplyWriteback(const SymmetricCache::Eviction& ev) override {
    partition_->Apply(ev.key, ev.value, ev.ts);
    log_.push_back("writeback:" + std::to_string(ev.key));
  }
  FillSnapshot GateAndSnapshot(Key key) override {
    const Partition::ResidentSnapshot snap = partition_->MarkCacheResident(key);
    log_.push_back("gate:" + std::to_string(key));
    return FillSnapshot{snap.value, snap.ts};
  }
  void PublishFills(const std::vector<FillMsg>& fills) override {
    if (batch_publish_) {
      published_fills_.insert(published_fills_.end(), fills.begin(), fills.end());
      log_.push_back("fills:" + std::to_string(fills.size()));
    } else {
      for (const FillMsg& f : fills) {
        published_fills_.push_back(f);
        log_.push_back("fills:1");
      }
    }
  }
  void PublishInstalled(const EpochInstalledMsg& msg) override {
    installed_.push_back(msg.epoch);
    log_.push_back("installed:" + std::to_string(msg.epoch));
  }
  void LiftGate(Key key) override {
    partition_->ClearCacheResident(key);
    log_.push_back("lift:" + std::to_string(key));
  }

  bool ShardResident(Key key) const {
    Value v;
    Timestamp ts;
    bool resident = false;
    EXPECT_TRUE(partition_->Get(key, &v, &ts, &resident));
    return resident;
  }

  Partition& partition() { return *partition_; }
  const std::vector<FillMsg>& published_fills() const { return published_fills_; }
  const std::vector<std::uint64_t>& installed() const { return installed_; }
  const std::vector<std::string>& log() const { return log_; }

 private:
  bool batch_publish_;
  std::unique_ptr<Partition> partition_;
  std::vector<FillMsg> published_fills_;
  std::vector<std::uint64_t> installed_;
  std::vector<std::string> log_;
};

struct HostHarness {
  explicit HostHarness(bool batch_publish) : host(batch_publish) {
    cache = std::make_unique<SymmetricCache>(8);
    engine = std::make_unique<ScEngine>(0, kNodes, cache.get(), &sink);
    HotSetManagerConfig hc;
    hc.self = 0;
    hc.num_nodes = kNodes;
    hc.home_of = HomeOf;
    mgr = std::make_unique<HotSetManager>(hc, cache.get(), engine.get(), &host);
    cache->InstallHotSet({2});
    cache->Fill(2, "seed", Timestamp{1, 1});
    host.partition().MarkCacheResident(2);  // prefilled hot key, gate up
  }

  RecordingSink sink;
  FakeHost host;
  std::unique_ptr<SymmetricCache> cache;
  std::unique_ptr<CoherenceEngine> engine;
  std::unique_ptr<HotSetManager> mgr;
};

TEST(HotSetHostHooks, SimStyleAndLiveStyleHostsSeeTheSameTransition) {
  // Drive the identical transition sequence through a batching ("sim") host
  // and a per-fill ("live") host: key 2 (dirty, homed here) is evicted, keys
  // 4 and 6 (homed here) are admitted, the peer confirms, the gate lifts.
  HostHarness sim_style(/*batch_publish=*/true);
  HostHarness live_style(/*batch_publish=*/false);
  for (HostHarness* h : {&sim_style, &live_style}) {
    h->cache->Find(2)->dirty = true;
    h->cache->Find(2)->value = "dirty-write";
    h->cache->Find(2)->value_ts = Timestamp{3, 0};
    h->mgr->DriveAnnounce(HotSetAnnounceMsg{1, {4, 6}});
    EXPECT_TRUE(h->host.ShardResident(2)) << "gate stays up until the barrier";
    EXPECT_TRUE(h->host.ShardResident(4));
    EXPECT_TRUE(h->host.ShardResident(6));
    EXPECT_EQ(h->host.installed(), std::vector<std::uint64_t>{1});
    h->mgr->DrivePeerInstalled(1, 1);
    EXPECT_FALSE(h->host.ShardResident(2)) << "barrier complete: gate lifted";
  }

  // Identical observable outcomes: write-back applied to the shard...
  for (HostHarness* h : {&sim_style, &live_style}) {
    Value v;
    Timestamp ts;
    ASSERT_TRUE(h->host.partition().Get(2, &v, &ts));
    EXPECT_EQ(v, "dirty-write");
    EXPECT_EQ(ts, (Timestamp{3, 0}));
    // ...fills snapshotted from the shard and applied locally...
    EXPECT_EQ(h->cache->Find(4)->state(), CacheState::kValid);
    EXPECT_EQ(h->cache->Find(4)->value, "shard");
    EXPECT_EQ(h->cache->Find(6)->state(), CacheState::kValid);
  }
  // ...and the same published fills, in the same order.
  ASSERT_EQ(sim_style.host.published_fills().size(), 2u);
  ASSERT_EQ(live_style.host.published_fills().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(sim_style.host.published_fills()[i].key,
              live_style.host.published_fills()[i].key);
    EXPECT_EQ(sim_style.host.published_fills()[i].value,
              live_style.host.published_fills()[i].value);
    EXPECT_EQ(sim_style.host.published_fills()[i].epoch,
              live_style.host.published_fills()[i].epoch);
  }
  // The hook sequences differ only in fill batching.
  EXPECT_EQ(sim_style.host.log(),
            (std::vector<std::string>{"writeback:2", "gate:4", "gate:6", "fills:2",
                                      "installed:1", "lift:2"}));
  EXPECT_EQ(live_style.host.log(),
            (std::vector<std::string>{"writeback:2", "gate:4", "gate:6", "fills:1",
                                      "fills:1", "installed:1", "lift:2"}));
}

TEST(HotSetHostHooks, DeferredInstallPublishesOnDriveDeferred) {
  // A Lin write in flight defers the eviction: DriveAnnounce must not publish
  // an install; DriveDeferred after the ack completes it through the hooks.
  RecordingSink sink;
  FakeHost host(/*batch_publish=*/false);
  SymmetricCache cache(4);
  LinEngine engine(0, kNodes, &cache, &sink);
  HotSetManagerConfig hc;
  hc.self = 0;
  hc.num_nodes = kNodes;
  hc.home_of = HomeOf;
  HotSetManager mgr(hc, &cache, &engine, &host);
  cache.InstallHotSet({2});
  cache.Fill(2, "seed", Timestamp{1, 1});
  host.partition().MarkCacheResident(2);

  engine.Write(2, "w", nullptr);
  ASSERT_EQ(sink.invalidations.size(), 1u);
  mgr.DriveAnnounce(HotSetAnnounceMsg{1, {4}});
  EXPECT_TRUE(mgr.HasDeferred());
  EXPECT_TRUE(host.installed().empty());

  engine.OnAck(1, AckMsg{2, sink.invalidations[0].ts});
  mgr.DriveDeferred();
  EXPECT_FALSE(mgr.HasDeferred());
  EXPECT_EQ(host.installed(), std::vector<std::uint64_t>{1});
  // The completed write's value reached the shard via the write-back hook.
  Value v;
  Timestamp ts;
  ASSERT_TRUE(host.partition().Get(2, &v, &ts));
  EXPECT_EQ(v, "w");
}

// ---------------------------------------------------------------------------
// The fill-vs-announce race (found by the model checker's transition scope)
// ---------------------------------------------------------------------------

TEST(HotSetManager, NotedUncachedUpdateSupersedesStaleFill) {
  // An update for a not-yet-admitted key was dropped before the announce
  // arrived; the stale stashed fill must not resurrect the older value.
  Harness h(ConsistencyModel::kSc);
  h.mgr->ApplyFill(FillMsg{5, "stale-fill", Timestamp{2, 1}, 1});  // stashed
  h.mgr->NoteUncachedUpdate(5, "newer-write", Timestamp{3, 0});
  h.mgr->Apply(HotSetAnnounceMsg{1, {5}});
  ASSERT_NE(h.cache->Find(5), nullptr);
  EXPECT_EQ(h.cache->Find(5)->state(), CacheState::kValid);
  EXPECT_EQ(h.cache->Find(5)->value, "newer-write");
  EXPECT_EQ(h.cache->Find(5)->ts(), (Timestamp{3, 0}));
}

TEST(HotSetManager, NotedUncachedInvalidateLeavesFillInvalidUntilItsUpdate) {
  // Only the invalidation of a newer write was seen before the announce: the
  // fill installs Invalid at the promised timestamp, and the (re-delivered)
  // update with that exact timestamp completes it — no stale Valid window.
  Harness h(ConsistencyModel::kLin);
  h.mgr->NoteUncachedInvalidate(5, Timestamp{4, 1});
  h.mgr->Apply(HotSetAnnounceMsg{1, {5}});
  h.mgr->ApplyFill(FillMsg{5, "fill", Timestamp{2, 1}, 1});
  ASSERT_NE(h.cache->Find(5), nullptr);
  EXPECT_EQ(h.cache->Find(5)->state(), CacheState::kInvalid);
  EXPECT_EQ(h.cache->Find(5)->ts(), (Timestamp{4, 1}));
  bool read_done = false;
  h.engine->Read(5, nullptr, nullptr,
                 [&](const Value&, Timestamp) { read_done = true; });
  EXPECT_FALSE(read_done) << "reads must wait for the in-flight update";
  h.engine->OnUpdate(1, UpdateMsg{5, "in-flight", Timestamp{4, 1}});
  EXPECT_TRUE(read_done);
  EXPECT_EQ(h.cache->Find(5)->state(), CacheState::kValid);
  EXPECT_EQ(h.cache->Find(5)->value, "in-flight");
}

TEST(HotSetManager, AheadRecordsArePrunedForKeysTheEpochDidNotAdmit) {
  Harness h(ConsistencyModel::kSc);
  h.mgr->NoteUncachedUpdate(9, "x", Timestamp{5, 1});
  h.mgr->Apply(HotSetAnnounceMsg{1, {5}});  // 9 not admitted
  EXPECT_TRUE(h.mgr->SeenAheadTraffic().empty());
}

TEST(HotSetManager, StaleAnnounceIsIgnored) {
  Harness h(ConsistencyModel::kSc);
  h.mgr->Apply(HotSetAnnounceMsg{2, {4}});
  const auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {6}});
  EXPECT_TRUE(t.fill_duties.empty());
  EXPECT_EQ(h.cache->Find(6), nullptr);
  EXPECT_NE(h.cache->Find(4), nullptr);
}

}  // namespace
}  // namespace cckvs
