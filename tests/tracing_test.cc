// Distributed per-op tracing (runtime/tracing.h): the span ring, the
// deterministic sampler, the zero-allocation Emit path, the Chrome
// trace-event export, and the per-rank merge.
//
// The hard invariants here:
//  * Emit() never allocates — a traced rack must pass the same alloc_assert
//    audit an untraced one does, so the ring is a bounds-free array store.
//  * Sampling is deterministic — two tracers with the same config sample the
//    same ops, so traced runs are reproducible and tests can assert on them.
//  * A traced live rack exports a file that downstream tooling
//    (chrome://tracing, tools/trace_report.py) accepts, and per-rank files
//    merge into one such file by line surgery alone.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/alloc_tracker.h"
#include "src/common/cycles.h"
#include "src/runtime/live_rack.h"
#include "src/runtime/tracing.h"

namespace cckvs {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

std::string TempPath(const char* tag) {
  return "/tmp/cckvs_tracing_test_" + std::to_string(getpid()) + "_" + tag +
         ".json";
}

TEST(SpanRing, KeepsNewestOnWraparound) {
  SpanRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    SpanRecord rec;
    rec.span_id = i;
    ring.Push(rec);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  // Slots hold the newest 4 records (6..9), overwrite-oldest order.
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    ids.push_back(ring[i].span_id);
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{8, 9, 6, 7}));
}

TEST(SpanRing, NoDropsBelowCapacity) {
  SpanRing ring(8);
  for (int i = 0; i < 8; ++i) {
    ring.Push(SpanRecord{});
  }
  EXPECT_EQ(ring.recorded(), 8u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 8u);
}

TEST(Tracer, SamplerIsDeterministicOneInN) {
  Tracer::Config config;
  config.node = 2;
  config.sample_every = 4;
  Tracer a(config);
  Tracer b(config);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) {
    const bool sa = a.SampleNext();
    EXPECT_EQ(sa, b.SampleNext()) << "op " << i;  // same config => same picks
    EXPECT_EQ(sa, i % 4 == 0) << "op " << i;      // op 0 always sampled
    sampled += sa;
  }
  EXPECT_EQ(sampled, 16);
}

TEST(Tracer, AuxSamplerIsIndependentOfOpSampler) {
  Tracer::Config config;
  config.sample_every = 2;
  Tracer t(config);
  EXPECT_TRUE(t.SampleNext());
  EXPECT_TRUE(t.SampleAux());  // its own counter: not advanced by SampleNext
  EXPECT_FALSE(t.SampleNext());
  EXPECT_FALSE(t.SampleAux());
  EXPECT_TRUE(t.SampleNext());
  EXPECT_TRUE(t.SampleAux());
}

TEST(Tracer, IdsEmbedNodeAndNeverCollideAcrossNodes) {
  Tracer::Config c0;
  c0.node = 0;
  Tracer::Config c3;
  c3.node = 3;
  Tracer t0(c0);
  Tracer t3(c3);
  // Same sequence position on different nodes must differ (rack-unique ids
  // without coordination), and node 0's ids must still be nonzero.
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id0 = t0.NewTraceId();
    const std::uint64_t id3 = t3.NewTraceId();
    EXPECT_NE(id0, 0u);
    EXPECT_NE(id0, id3);
    EXPECT_EQ(id0 >> 40, 1u);  // (node + 1) << 40
    EXPECT_EQ(id3 >> 40, 4u);
  }
}

TEST(Tracer, SampleEveryZeroCoercedToEveryOp) {
  Tracer::Config config;
  config.sample_every = 0;
  Tracer t(config);
  EXPECT_TRUE(t.SampleNext());
  EXPECT_TRUE(t.SampleNext());
}

// The tentpole invariant: recording spans allocates nothing once the tracer
// exists.  This is what lets a traced rack pass the alloc_assert audit.
TEST(Tracer, EmitIsAllocationFree) {
  if (!alloc::TrackerAvailable()) {
    GTEST_SKIP() << "allocation tracker compiled out (sanitizer build)";
  }
  Tracer::Config config;
  config.sample_every = 1;
  config.ring_capacity = 1 << 10;
  Tracer t(config);

  alloc::EnableThread();
  alloc::ResetThread();
  for (int i = 0; i < 10'000; ++i) {  // 10x ring capacity: wraps repeatedly
    if (t.SampleNext()) {
      const std::uint64_t trace = t.NewTraceId();
      const std::uint64_t span = t.NewSpanId();
      t.Emit(SpanKind::kOp, trace, span, 0, CycleNow(), CycleNow(),
             static_cast<std::uint64_t>(i), 1);
      t.Instant(SpanKind::kFillApplied, trace, span, 7, 8);
    }
  }
  const std::uint64_t allocs = alloc::ThreadCount();
  alloc::DisableThread();
  EXPECT_EQ(allocs, 0u);
}

TEST(ChromeExport, WritesValidFileWithAnchoredTimestamps) {
  Tracer::Config config;
  config.node = 1;
  Tracer t(config);
  const std::uint64_t start = CycleNow();
  t.Emit(SpanKind::kRpc, t.NewTraceId(), t.NewSpanId(), 0, start, CycleNow(),
         42, 0);
  t.Instant(SpanKind::kAnnounce, 0, 0, 3, 128);

  const std::string path = TempPath("export");
  TraceExportOptions opts;
  opts.pid = 0;
  opts.now_cycles = CycleNow();
  opts.now_ns = 5'000'000'000ull;  // 5s into the run
  std::string error;
  ASSERT_TRUE(WriteChromeTrace(path, {&t}, opts, &error)) << error;

  const std::string text = Slurp(path);
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"name\":\"rpc\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"announce\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  // rpc spans carry flow events so Chrome draws the cross-process arrow.
  EXPECT_NE(text.find("\"name\":\"rpc_flow\""), std::string::npos);
  // Metadata names the process and the node thread.
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"node 1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeExport, MergeSplicesRankFilesIntoOneTrace) {
  Tracer::Config c0;
  c0.node = 0;
  Tracer::Config c1;
  c1.node = 1;
  Tracer t0(c0);
  Tracer t1(c1);
  const std::uint64_t trace = t0.NewTraceId();
  t0.Emit(SpanKind::kRpc, trace, t0.NewSpanId(), 0, CycleNow(), CycleNow(), 1, 0);
  t1.Emit(SpanKind::kRpcServe, trace, t1.NewSpanId(), 0, CycleNow(), CycleNow(),
          1, 0);

  const std::string rank0 = TempPath("rank0");
  const std::string rank1 = TempPath("rank1");
  const std::string merged = TempPath("merged");
  TraceExportOptions opts;
  opts.now_cycles = CycleNow();
  opts.now_ns = 1'000'000;
  std::string error;
  ASSERT_TRUE(WriteChromeTrace(rank0, {&t0}, opts, &error)) << error;
  opts.pid = 1;
  ASSERT_TRUE(WriteChromeTrace(rank1, {&t1}, opts, &error)) << error;
  ASSERT_TRUE(MergeChromeTraces({rank0, rank1}, merged, &error)) << error;

  const std::string text = Slurp(merged);
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  // Exactly one header: the per-rank headers must not leak into the merge.
  EXPECT_EQ(text.find("{\"traceEvents\"", 1), std::string::npos);
  // Both ranks' spans survive, joined by the same trace id.
  EXPECT_NE(text.find("\"name\":\"rpc\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"rpc_serve\""), std::string::npos);
  char trace_hex[32];
  std::snprintf(trace_hex, sizeof(trace_hex), "0x%llx",
                static_cast<unsigned long long>(trace));
  std::size_t first = text.find(trace_hex);
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(text.find(trace_hex, first + 1), std::string::npos);
  std::remove(rank0.c_str());
  std::remove(rank1.c_str());
  std::remove(merged.c_str());
}

TEST(ChromeExport, MergeRejectsMissingInput) {
  std::string error;
  EXPECT_FALSE(MergeChromeTraces({"/nonexistent/cckvs_trace.json"},
                                 TempPath("mergefail"), &error));
  EXPECT_FALSE(error.empty());
}

// End to end: a traced single-process rack runs to completion, records spans
// on every node, and exports a file the tooling accepts.
TEST(TracedRack, RecordsAndExportsSpans) {
  LiveRackParams p;
  p.num_nodes = 2;
  p.consistency = ConsistencyModel::kSc;
  p.workload.keyspace = 4'096;
  p.workload.value_bytes = 16;
  p.cache_capacity = 64;
  p.window_per_node = 4;
  p.ops_per_node = 5'000;
  p.seed = 3;
  p.trace_path = TempPath("rack");
  p.trace_sample = 8;

  LiveRack rack(p);
  const LiveReport r = rack.Run();
  ASSERT_TRUE(r.ok()) << r.transport_error;
  EXPECT_TRUE(r.trace_error.empty()) << r.trace_error;
  EXPECT_GT(r.spans_recorded, 0u);

  const std::string text = Slurp(p.trace_path);
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"name\":\"op\""), std::string::npos);
  std::remove(p.trace_path.c_str());
}

// The acceptance invariant: tracing ON changes the zero-alloc audit nothing.
// Same configuration as the live_throughput audit section, shrunk.
TEST(TracedRack, PassesZeroAllocAuditWithTracingOn) {
  LiveRackParams p;
  p.num_nodes = 2;
  p.consistency = ConsistencyModel::kSc;
  p.workload.keyspace = 16'384;
  p.workload.value_bytes = 16;
  p.cache_capacity = 128;
  p.window_per_node = 8;
  p.ops_per_node = 20'000;
  p.coalescing = true;
  p.seed = 5;
  p.prefill_store = true;
  p.track_allocs = true;
  p.alloc_assert = true;  // CHECK-fails the test on any steady-state alloc
  p.trace_path = TempPath("zeroalloc");
  p.trace_sample = 4;

  LiveRack rack(p);
  const LiveReport r = rack.Run();
  ASSERT_TRUE(r.ok()) << r.transport_error;
  EXPECT_EQ(r.hot_path_allocs, 0u);
  EXPECT_GT(r.spans_recorded, 0u);
  std::remove(p.trace_path.c_str());
}

}  // namespace
}  // namespace cckvs
