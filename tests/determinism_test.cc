// Determinism regression: two RackSimulation runs with identical RackParams
// must produce bit-identical RackReports.  docs/BENCHMARKS.md leans on this —
// every figure bench compares runs across parameter sweeps assuming the only
// varying input is the parameter, and EXPERIMENTS shapes are only meaningful
// if reruns reproduce exactly.

#include <gtest/gtest.h>

#include "src/cckvs/rack.h"

namespace cckvs {
namespace {

RackReport RunOnce(const RackParams& p) {
  RackSimulation rack(p);
  return rack.Run(/*measure_ns=*/200'000, /*warmup_ns=*/50'000);
}

// Field-by-field exact comparison (doubles compared bit-for-bit via ==; any
// nondeterminism shows up as a plain value mismatch with a readable name).
void ExpectIdentical(const RackReport& a, const RackReport& b) {
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mrps, b.mrps);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.hit_mrps, b.hit_mrps);
  EXPECT_EQ(a.miss_mrps, b.miss_mrps);
  EXPECT_EQ(a.avg_latency_us, b.avg_latency_us);
  EXPECT_EQ(a.p50_latency_us, b.p50_latency_us);
  EXPECT_EQ(a.p95_latency_us, b.p95_latency_us);
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
  EXPECT_EQ(a.tx_gbps_per_node, b.tx_gbps_per_node);
  EXPECT_EQ(a.header_gbps_per_node, b.header_gbps_per_node);
  EXPECT_EQ(a.payload_gbps_per_node, b.payload_gbps_per_node);
  for (int c = 0; c < static_cast<int>(TrafficClass::kNumClasses); ++c) {
    EXPECT_EQ(a.class_gbps[c], b.class_gbps[c]) << "traffic class " << c;
  }
  EXPECT_EQ(a.worker_utilization, b.worker_utilization);
  EXPECT_EQ(a.kvs_utilization, b.kvs_utilization);
  EXPECT_EQ(a.updates_sent, b.updates_sent);
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.credit_updates_sent, b.credit_updates_sent);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.hot_set_churn, b.hot_set_churn);
}

RackParams SmallRack(SystemKind kind, ConsistencyModel model) {
  RackParams p;
  p.kind = kind;
  p.consistency = model;
  p.num_nodes = 4;
  p.workload.keyspace = 100'000;
  p.workload.write_ratio = 0.05;
  p.cache_capacity = 500;
  p.seed = 42;
  return p;
}

TEST(DeterminismTest, CcKvsScReportsAreBitIdentical) {
  const RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  ExpectIdentical(RunOnce(p), RunOnce(p));
}

TEST(DeterminismTest, CcKvsLinReportsAreBitIdentical) {
  const RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  ExpectIdentical(RunOnce(p), RunOnce(p));
}

TEST(DeterminismTest, BaselinesAreBitIdentical) {
  for (const SystemKind kind :
       {SystemKind::kBase, SystemKind::kBaseErew, SystemKind::kCentralCache}) {
    const RackParams p = SmallRack(kind, ConsistencyModel::kSc);
    ExpectIdentical(RunOnce(p), RunOnce(p));
  }
}

TEST(DeterminismTest, OnlineTopkIsDeterministicToo) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  p.online_topk = true;
  p.topk_epoch_requests = 20'000;
  ExpectIdentical(RunOnce(p), RunOnce(p));
}

TEST(DeterminismTest, DriftingEpochsAreDeterministic) {
  // The full adaptive path — drifting popularity, epoch churn, deferred
  // evictions, the install barrier — must stay a pure function of the seed.
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    RackParams p = SmallRack(SystemKind::kCcKvs, model);
    p.workload.keyspace = 10'000;
    p.workload.drift_period_ops = 5'000;
    p.workload.drift_rank_shift = 100;
    p.cache_capacity = 200;
    p.prefill_hot_set = false;
    p.online_topk = true;
    p.topk_epoch_requests = 5'000;
    p.topk_sample_probability = 1.0;
    ExpectIdentical(RunOnce(p), RunOnce(p));
  }
}

// Different seeds must actually change the run (guards against the test
// passing vacuously because reports are all zero / constant).
TEST(DeterminismTest, SeedsMatter) {
  RackParams a = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  RackParams b = a;
  b.seed = 43;
  EXPECT_NE(RunOnce(a).completed, RunOnce(b).completed);
}

}  // namespace
}  // namespace cckvs
