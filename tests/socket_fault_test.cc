// Socket-backend fault injection (runtime/socket_fabric.h).
//
// A stream peer can misbehave in ways the in-process and shm fabrics cannot:
// hang up mid-frame, dribble bytes one at a time, send garbage, or simply
// not exist.  Each test plays a raw-socket peer speaking (or violating) the
// frame protocol against a real fabric and asserts the contract from the
// header: faults latch a sticky error() and never hang or corrupt — and
// well-formed-but-slow traffic is not a fault.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/live_rack.h"
#include "src/runtime/socket_fabric.h"
#include "src/runtime/wire_codec.h"

namespace cckvs {
namespace {

using Clock = std::chrono::steady_clock;

std::string UniqueBase(const char* tag) {
  static int counter = 0;
  return "/tmp/cckvs_fault_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter++);
}

// Connects to `path` (retrying while the listener comes up) or returns -1.
int ConnectUds(const std::string& path) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return -1;
}

void SendAll(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = send(fd, p, len, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void SendFrameRaw(int fd, std::uint8_t type, const void* payload, std::uint32_t len) {
  std::uint8_t header[kSocketFrameHeaderBytes];
  header[0] = type;
  for (int i = 0; i < 4; ++i) {
    header[1 + i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  SendAll(fd, header, sizeof(header));
  if (len > 0) {
    SendAll(fd, payload, len);
  }
}

// Builds a 2-node ranked fabric as rank 0 while a raw-socket "rank 1"
// connects and completes the hello handshake.  Returns the fabric and the
// peer's fd (the caller owns both).
std::unique_ptr<TransportFabric> MakeRank0WithRawPeer(const std::string& base,
                                                      int* peer_fd) {
  FabricConfig config;
  config.num_nodes = 2;
  TransportOptions opts;
  opts.kind = TransportKind::kSocket;
  opts.rank = 0;
  opts.socket_path_base = base;
  opts.connect_timeout_ms = 10'000;

  std::unique_ptr<TransportFabric> fabric;
  std::string error;
  std::thread builder([&] { fabric = MakeFabric(config, opts, &error); });

  const int fd = ConnectUds(base + ".0");
  EXPECT_GE(fd, 0);
  const std::uint8_t rank = 1;
  SendFrameRaw(fd, kSocketFrameHello, &rank, 1);
  builder.join();
  EXPECT_NE(fabric, nullptr) << error;
  *peer_fd = fd;
  return fabric;
}

bool EventuallyFaulted(TransportFabric& fabric) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (!fabric.faulted() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return fabric.faulted();
}

TEST(SocketFault, ConnectRefusedFailsCleanlyWithinDeadline) {
  FabricConfig config;
  config.num_nodes = 2;
  TransportOptions opts;
  opts.kind = TransportKind::kSocket;
  opts.rank = 1;  // must connect to rank 0, which does not exist
  opts.socket_path_base = UniqueBase("refused");
  opts.connect_timeout_ms = 300;

  const auto t0 = Clock::now();
  std::string error;
  std::unique_ptr<TransportFabric> fabric = MakeFabric(config, opts, &error);
  EXPECT_EQ(fabric, nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(8)) << "deadline ignored";
}

TEST(SocketFault, LiveRackSurfacesConnectErrorInReport) {
  LiveRackParams p;
  p.num_nodes = 2;
  p.ops_per_node = 100;
  p.transport.kind = TransportKind::kSocket;
  p.transport.rank = 1;
  p.transport.socket_path_base = UniqueBase("rack_refused");
  p.transport.connect_timeout_ms = 300;

  LiveRack rack(p);
  const LiveReport report = rack.Run();
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.transport_error.empty());
  EXPECT_EQ(report.completed, 0u);
}

TEST(SocketFault, PeerHangupMidBatchLatchesError) {
  int peer_fd = -1;
  auto fabric = MakeRank0WithRawPeer(UniqueBase("midbatch"), &peer_fd);
  ASSERT_NE(fabric, nullptr);
  ASSERT_GE(peer_fd, 0);

  // A batch frame promising 100 payload bytes, delivering 10, then hangup.
  std::uint8_t header[kSocketFrameHeaderBytes] = {kSocketFrameBatch, 100, 0, 0, 0};
  SendAll(peer_fd, header, sizeof(header));
  std::uint8_t partial[10] = {};
  SendAll(peer_fd, partial, sizeof(partial));
  close(peer_fd);

  EXPECT_TRUE(EventuallyFaulted(*fabric));
  EXPECT_NE(fabric->error().find("hung up"), std::string::npos) << fabric->error();
  fabric->Shutdown();  // must not hang
}

TEST(SocketFault, PartialHeaderThenCloseLatchesError) {
  int peer_fd = -1;
  auto fabric = MakeRank0WithRawPeer(UniqueBase("midheader"), &peer_fd);
  ASSERT_NE(fabric, nullptr);
  ASSERT_GE(peer_fd, 0);

  // A short write: two bytes of a five-byte frame header, then hangup.
  const std::uint8_t short_write[2] = {kSocketFrameBatch, 50};
  SendAll(peer_fd, short_write, sizeof(short_write));
  close(peer_fd);

  EXPECT_TRUE(EventuallyFaulted(*fabric));
  fabric->Shutdown();
}

TEST(SocketFault, TrickledFrameDecodesAndCleanCloseIsNotAFault) {
  int peer_fd = -1;
  auto fabric = MakeRank0WithRawPeer(UniqueBase("trickle"), &peer_fd);
  ASSERT_NE(fabric, nullptr);
  ASSERT_GE(peer_fd, 0);

  // A valid batch, dribbled one byte at a time: partial reads must reassemble.
  WireBatch batch;
  batch.src = 1;
  batch.Append(WireBody{UpdateMsg{42, "trickle", Timestamp{7, 1}}});
  Buffer payload;
  SerializeWireBatch(batch, &payload);

  Buffer frame;
  frame.push_back(kSocketFrameBatch);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  for (const std::uint8_t byte : frame) {
    SendAll(peer_fd, &byte, 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  std::vector<WireBatch> out;
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (out.empty() && Clock::now() < deadline) {
    fabric->Drain(0, &out, 8);
    if (out.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].src, 1);
  ASSERT_EQ(out[0].size(), 1u);
  const auto& upd = std::get<UpdateMsg>(out[0][0]);
  EXPECT_EQ(upd.key, 42u);
  EXPECT_EQ(upd.value, "trickle");

  // EOF at a frame boundary is orderly teardown, not a fault.
  close(peer_fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(fabric->faulted()) << fabric->error();
  fabric->Shutdown();
}

TEST(SocketFault, UndecodableBatchFrameLatchesError) {
  int peer_fd = -1;
  auto fabric = MakeRank0WithRawPeer(UniqueBase("garbage"), &peer_fd);
  ASSERT_NE(fabric, nullptr);
  ASSERT_GE(peer_fd, 0);

  const std::uint8_t garbage[8] = {0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8};
  SendFrameRaw(peer_fd, kSocketFrameBatch, garbage, sizeof(garbage));

  EXPECT_TRUE(EventuallyFaulted(*fabric));
  EXPECT_NE(fabric->error().find("undecodable"), std::string::npos)
      << fabric->error();
  close(peer_fd);
  fabric->Shutdown();
}

TEST(SocketFault, OversizedFrameLatchesError) {
  int peer_fd = -1;
  auto fabric = MakeRank0WithRawPeer(UniqueBase("oversize"), &peer_fd);
  ASSERT_NE(fabric, nullptr);
  ASSERT_GE(peer_fd, 0);

  // Header alone: a length past the frame cap must fault before any payload
  // is read (no 16MB+ allocation on a hostile length).
  std::uint8_t header[kSocketFrameHeaderBytes];
  header[0] = kSocketFrameBatch;
  const std::uint32_t huge = kSocketMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header[1 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  SendAll(peer_fd, header, sizeof(header));

  EXPECT_TRUE(EventuallyFaulted(*fabric));
  close(peer_fd);
  fabric->Shutdown();
}

}  // namespace
}  // namespace cckvs
