// Quickstart: bring up a simulated ccKVS rack, issue gets and puts, and watch
// the symmetric caches keep each other consistent.
//
//   $ ./quickstart
//
// The public API in play:
//   RackParams      — experiment configuration (systems, workload, fabric)
//   RackSimulation  — the 9-node rack (here: 4 nodes, to keep output small)
//   RackReport      — throughput / latency / traffic summary of a run

#include <cstdio>

#include "src/cckvs/rack.h"

int main() {
  using namespace cckvs;

  // A small rack: 4 nodes, a 10k-key dataset with Zipfian (alpha=0.99) access
  // skew, a symmetric cache of the 100 hottest keys on every node, and the
  // per-key-linearizable consistency protocol.
  RackParams params;
  params.kind = SystemKind::kCcKvs;
  params.consistency = ConsistencyModel::kLin;
  params.num_nodes = 4;
  params.workload.keyspace = 10'000;
  params.workload.zipf_alpha = 0.99;
  params.workload.write_ratio = 0.01;  // 1% puts
  params.cache_capacity = 100;
  params.record_history = true;  // keep a full op history for checking

  RackSimulation rack(params);
  std::printf("ccKVS quickstart: %d nodes, %s consistency, %llu keys, %zu-key "
              "symmetric cache\n\n",
              params.num_nodes, ToString(params.consistency),
              static_cast<unsigned long long>(params.workload.keyspace),
              params.cache_capacity);

  // Run half a simulated millisecond of closed-loop load.
  const RackReport report = rack.Run(/*measure_ns=*/500'000, /*warmup_ns=*/100'000);

  std::printf("throughput        %10.1f M requests/s\n", report.mrps);
  std::printf("cache hit rate    %10.0f %%\n", 100.0 * report.hit_rate);
  std::printf("avg latency       %10.2f us\n", report.avg_latency_us);
  std::printf("p95 latency       %10.2f us\n", report.p95_latency_us);
  std::printf("network per node  %10.2f Gb/s\n", report.tx_gbps_per_node);
  std::printf("updates sent      %10llu\n",
              static_cast<unsigned long long>(report.updates_sent));
  std::printf("invalidations     %10llu\n",
              static_cast<unsigned long long>(report.invalidations_sent));

  // Every completed operation was recorded; certify the history against the
  // formal consistency model (§5.1 of the paper).
  const std::string lin = rack.history().CheckPerKeyLinearizability();
  const std::string sc = rack.history().CheckPerKeySequentialConsistency();
  std::printf("\nhistory: %zu operations recorded\n", rack.history().size());
  std::printf("per-key linearizability: %s\n", lin.empty() ? "OK" : lin.c_str());
  std::printf("per-key sequential consistency: %s\n", sc.empty() ? "OK" : sc.c_str());
  return lin.empty() && sc.empty() ? 0 : 1;
}
