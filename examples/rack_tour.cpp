// Rack tour: an end-to-end comparison run, the "evaluation in one binary".
//
// Stands up the paper's full 9-node configuration for each system — Base-EREW,
// Base, Uniform, ccKVS-SC, ccKVS-Lin — under a YCSB-B-like workload (95% reads,
// 5% writes, Zipf 0.99) and prints a side-by-side scorecard: throughput, hit
// rate, latency, per-node network usage and consistency traffic.
//
//   $ ./rack_tour [write_ratio]

#include <cstdio>
#include <cstdlib>

#include "src/cckvs/rack.h"

int main(int argc, char** argv) {
  using namespace cckvs;
  const double write_ratio = argc > 1 ? std::atof(argv[1]) : 0.05;

  std::printf("rack tour: 9 nodes, 250M keys, Zipf 0.99, %.1f%% writes, 40B values\n\n",
              100.0 * write_ratio);
  std::printf("%-12s %10s %9s %9s %9s %11s %12s\n", "system", "MRPS", "hit %",
              "avg us", "p95 us", "net Gb/s", "cons. msgs");

  struct Entry {
    const char* name;
    SystemKind kind;
    ConsistencyModel model;
    double alpha;
  };
  const Entry entries[] = {
      {"Base-EREW", SystemKind::kBaseErew, ConsistencyModel::kNone, 0.99},
      {"Base", SystemKind::kBase, ConsistencyModel::kNone, 0.99},
      {"Uniform", SystemKind::kBase, ConsistencyModel::kNone, 0.0},
      {"ccKVS-SC", SystemKind::kCcKvs, ConsistencyModel::kSc, 0.99},
      {"ccKVS-Lin", SystemKind::kCcKvs, ConsistencyModel::kLin, 0.99},
  };

  for (const Entry& e : entries) {
    RackParams p;
    p.kind = e.kind;
    if (e.kind == SystemKind::kCcKvs) {
      p.consistency = e.model;
    }
    p.num_nodes = 9;
    p.workload.keyspace = 250'000'000;
    p.workload.zipf_alpha = e.alpha;
    p.workload.write_ratio = write_ratio;
    p.cache_capacity = 250'000;
    RackSimulation rack(p);
    const SimTime warmup = e.kind == SystemKind::kBaseErew ? 3'000'000 : 150'000;
    const RackReport r = rack.Run(250'000, warmup);
    const std::uint64_t consistency_msgs =
        r.updates_sent + r.invalidations_sent + r.acks_sent;
    std::printf("%-12s %10.1f %8.0f%% %9.1f %9.1f %11.1f %12llu\n", e.name, r.mrps,
                100.0 * r.hit_rate, r.avg_latency_us, r.p95_latency_us,
                r.tx_gbps_per_node, static_cast<unsigned long long>(consistency_msgs));
  }

  std::printf("\nwhat to look for: ccKVS leads while writes are modest; raise the\n"
              "write ratio (e.g. ./rack_tour 0.15) and watch the consistency\n"
              "traffic erode its advantage until Uniform breaks even (Figure 15)\n");
  return 0;
}
