// Skew explorer: the motivation scenario of the paper's introduction.
//
// An operator sizing a data-serving tier wants to know: how badly does my key
// popularity skew hurt a sharded KVS, and how much symmetric cache would fix
// it?  This example sweeps Zipf exponents and cache sizes and prints (a) the
// load imbalance across shards, (b) the expected cache hit rate, and (c) the
// simulated throughput of Base vs ccKVS at each point.
//
//   $ ./skew_explorer [alpha] [cache_pct]
//
// With no arguments, sweeps alpha in {0.6, 0.9, 0.99, 1.2} at 0.1% cache.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/cckvs/rack.h"
#include "src/common/zipf.h"
#include "src/store/partitioner.h"
#include "src/workload/workload.h"

namespace {

using namespace cckvs;

// Hottest-shard load factor for `servers` shards under Zipf(alpha).
double ImbalanceFactor(std::uint64_t keys, double alpha, int servers) {
  const double p1 = alpha == 0.0 ? 1.0 / static_cast<double>(keys)
                                 : ZipfPmf(1, keys, alpha);
  return (p1 + (1.0 - p1) / servers) * servers;
}

void ExplorePoint(double alpha, double cache_pct) {
  constexpr std::uint64_t kKeys = 10'000'000;
  constexpr int kNodes = 9;
  const auto cache_keys = static_cast<std::size_t>(cache_pct / 100.0 * kKeys);

  const double imbalance = ImbalanceFactor(kKeys, alpha, kNodes);
  const double hit_rate = 100.0 * ZipfCdf(cache_keys, kKeys, alpha);

  RackParams base;
  base.kind = SystemKind::kBase;
  base.num_nodes = kNodes;
  base.workload.keyspace = kKeys;
  base.workload.zipf_alpha = alpha;
  RackParams cc = base;
  cc.kind = SystemKind::kCcKvs;
  cc.cache_capacity = cache_keys > 0 ? cache_keys : 1;

  RackSimulation base_rack(base);
  RackSimulation cc_rack(cc);
  const double base_mrps = base_rack.Run(200'000, 100'000).mrps;
  const double cc_mrps = cc_rack.Run(200'000, 100'000).mrps;

  std::printf("%-8.2f %12.2fx %11.1f%% %11.1f %11.1f %9.2fx\n", alpha, imbalance,
              hit_rate, base_mrps, cc_mrps, cc_mrps / base_mrps);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("skew explorer: 9 nodes, 10M keys, cache = hottest keys on every node\n\n");
  std::printf("%-8s %13s %12s %11s %11s %10s\n", "alpha", "hot shard", "hit rate",
              "Base MRPS", "ccKVS MRPS", "speedup");

  if (argc >= 3) {
    ExplorePoint(std::atof(argv[1]), std::atof(argv[2]));
    return 0;
  }
  const double cache_pct = argc == 2 ? std::atof(argv[1]) : 0.1;
  for (const double alpha : {0.6, 0.9, 0.99, 1.2}) {
    ExplorePoint(alpha, cache_pct);
  }
  std::printf("\nreading: 'hot shard' = hottest shard's load relative to average;\n"
              "higher skew hurts Base but feeds the symmetric cache\n");
  return 0;
}
