// Consistency semantics demo: the paper's Figures 5 and 6, executable.
//
// Drives the SC and Lin protocol engines directly (no simulator) through the
// exact scenarios the paper uses to define its consistency models, and shows
// which behaviours each protocol admits:
//
//   Figure 5  — a session reading a stale value after another session's
//               completed write: legal under per-key SC, impossible under Lin.
//   Figure 6  — two sessions disagreeing on the order of two writes: illegal
//               under both models; Lamport-timestamped updates prevent it.

#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/protocol/engine.h"

namespace {

using namespace cckvs;

constexpr Key kK = 1;

// Minimal fabric: queues protocol messages so the demo controls delivery.
class DemoFabric {
 public:
  DemoFabric(int n, ConsistencyModel model) {
    for (int i = 0; i < n; ++i) {
      caches_.push_back(std::make_unique<SymmetricCache>(2));
      caches_.back()->InstallHotSet({kK});
      caches_.back()->Fill(kK, "0", Timestamp{0, 0});
      sinks_.push_back(std::make_unique<Sink>(this, static_cast<NodeId>(i)));
    }
    for (int i = 0; i < n; ++i) {
      if (model == ConsistencyModel::kSc) {
        engines_.push_back(std::make_unique<ScEngine>(
            static_cast<NodeId>(i), n, caches_[static_cast<std::size_t>(i)].get(),
            sinks_[static_cast<std::size_t>(i)].get()));
      } else {
        engines_.push_back(std::make_unique<LinEngine>(
            static_cast<NodeId>(i), n, caches_[static_cast<std::size_t>(i)].get(),
            sinks_[static_cast<std::size_t>(i)].get()));
      }
    }
  }

  CoherenceEngine& node(int i) { return *engines_[static_cast<std::size_t>(i)]; }
  std::size_t in_flight() const { return queue_.size(); }

  void DeliverAll() {
    while (!queue_.empty()) {
      auto fn = std::move(queue_.front());
      queue_.pop_front();
      fn();
    }
  }

 private:
  class Sink final : public MessageSink {
   public:
    Sink(DemoFabric* fabric, NodeId self) : fabric_(fabric), self_(self) {}
    void BroadcastUpdate(const UpdateMsg& msg) override {
      for (std::size_t j = 0; j < fabric_->engines_.size(); ++j) {
        if (j != self_) {
          fabric_->queue_.push_back(
              [f = fabric_, j, msg, s = self_] { f->engines_[j]->OnUpdate(s, msg); });
        }
      }
    }
    void BroadcastInvalidate(const InvalidateMsg& msg) override {
      for (std::size_t j = 0; j < fabric_->engines_.size(); ++j) {
        if (j != self_) {
          fabric_->queue_.push_back([f = fabric_, j, msg, s = self_] {
            f->engines_[j]->OnInvalidate(s, msg);
          });
        }
      }
    }
    void SendAck(NodeId to, const AckMsg& msg) override {
      fabric_->queue_.push_back(
          [f = fabric_, to, msg, s = self_] { f->engines_[to]->OnAck(s, msg); });
    }

   private:
    DemoFabric* fabric_;
    NodeId self_;
  };

  std::vector<std::unique_ptr<SymmetricCache>> caches_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<CoherenceEngine>> engines_;
  std::deque<std::function<void()>> queue_;
};

void Figure5(ConsistencyModel model) {
  std::printf("--- Figure 5 under %s ---\n", ToString(model));
  DemoFabric f(2, model);

  // t0: session A (node 0) PUT(K, 1).
  bool put_returned = false;
  f.node(0).Write(kK, "1", [&] { put_returned = true; });
  if (model == ConsistencyModel::kLin) {
    f.DeliverAll();  // Lin blocks until invalidations are acknowledged
  }
  std::printf("t0  session A: PUT(K,1)%s\n",
              put_returned ? " -> returned" : " (still propagating...)");

  // t1: session A reads its own write.
  Value v;
  if (f.node(0).Read(kK, &v, nullptr, [&](const Value& rv, Timestamp) { v = rv; }) ==
      CoherenceEngine::ReadResult::kBlocked) {
    f.DeliverAll();
  }
  std::printf("t1  session A: GET(K) -> %s\n", v.c_str());

  // t2: session B (node 1) reads.  Under SC the update may still be in flight:
  // B can legally observe the old value.  Under Lin the write has already
  // reached every replica before returning, so B must see the new value.
  bool blocked = false;
  Value vb;
  const auto r = f.node(1).Read(kK, &vb, nullptr, [&](const Value& rv, Timestamp) {
    vb = rv;
    blocked = true;
  });
  if (r == CoherenceEngine::ReadResult::kBlocked) {
    f.DeliverAll();
  }
  std::printf("t2  session B: GET(K) -> %s%s\n", vb.c_str(),
              blocked ? "  (read waited for the update)" : "");
  std::printf("%s\n\n",
              vb == "0" ? "  => stale read: allowed by per-key SC, a violation under Lin"
                        : "  => B observed the committed value: required by Lin");
}

void Figure6(ConsistencyModel model) {
  std::printf("--- Figure 6 under %s ---\n", ToString(model));
  DemoFabric f(4, model);

  // Sessions A (node 0) and D (node 3) write concurrently.
  f.node(0).Write(kK, "1", nullptr);
  f.node(3).Write(kK, "2", nullptr);
  f.DeliverAll();

  // Sessions B and C read twice each; all replicas already converged, and the
  // Lamport order (clock, then writer id) fixed a single global write order.
  Value vb1, vb2, vc1, vc2;
  f.node(1).Read(kK, &vb1, nullptr, nullptr);
  f.node(2).Read(kK, &vc1, nullptr, nullptr);
  f.node(1).Read(kK, &vb2, nullptr, nullptr);
  f.node(2).Read(kK, &vc2, nullptr, nullptr);
  std::printf("session B reads: %s then %s\n", vb1.c_str(), vb2.c_str());
  std::printf("session C reads: %s then %s\n", vc1.c_str(), vc2.c_str());
  std::printf("  => all sessions agree on the write order (timestamp "
              "serialization); the Figure-6 disagreement cannot occur\n\n");
}

}  // namespace

int main() {
  std::printf("ccKVS consistency semantics demo (paper Figures 5 and 6)\n\n");
  Figure5(ConsistencyModel::kSc);
  Figure5(ConsistencyModel::kLin);
  Figure6(ConsistencyModel::kSc);
  Figure6(ConsistencyModel::kLin);
  return 0;
}
