// Multi-process live rack: N OS processes, one rack node each, talking over
// shared-memory rings or UDS/TCP sockets — the cross-process transports from
// runtime/fabric.h — then a merged consistency-checker verdict.
//
//   $ ./multiproc_rack                         # 4 ranks over shm
//   $ ./multiproc_rack --transport=socket      # 4 ranks over UDS
//   $ ./multiproc_rack --nodes=8 --ops=50000 --consistency=sc --epochs --drift
//   $ ./multiproc_rack --trace=/tmp/rack.json --trace-sample=8   # per-op traces
//   $ ./multiproc_rack --l1=256 --l1-policy=clock   # node-private L1 tails
//
// Spawn-or-join: invoked with no --join flag this process becomes rank 0 —
// it spawns ranks 1..N-1 (re-exec of this binary with the encoded params),
// runs its own node, then collects every rank's artifact file, merges the
// recorded histories into one, and runs the full per-key SC/Lin checkers
// over the merged run.  Invoked with --join --params=<hex> --out=<path> it
// joins an existing rack as the rank baked into the params.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/runtime/live_rack.h"
#include "src/runtime/multiproc.h"
#include "src/runtime/tracing.h"

using namespace cckvs;

namespace {

// Runs this process's rank and writes its artifact file.  Exit code 0 iff
// the transport stayed healthy.
int RunRank(const LiveRackParams& params, const std::string& out_path) {
  LiveRack rack(params);
  const LiveReport report = rack.Run();

  RankArtifacts artifacts;
  artifacts.completed = report.completed;
  artifacts.rpcs_sent = report.rpcs_sent;
  artifacts.transport_error = report.transport_error;
  if (params.record_history) {
    artifacts.history = rack.history().ops();
  }
  std::string error;
  if (!SaveRankArtifacts(out_path, artifacts, &error)) {
    std::fprintf(stderr, "rank %d: %s\n", params.transport.rank, error.c_str());
    return 2;
  }
  if (!report.trace_error.empty()) {
    // Diagnostic only: a failed trace export never fails the rank.
    std::fprintf(stderr, "rank %d trace export: %s\n", params.transport.rank,
                 report.trace_error.c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "rank %d transport error: %s\n", params.transport.rank,
                 report.transport_error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool join = false;
  std::string params_hex;
  std::string out_path;
  int nodes = 4;
  std::uint64_t ops = 20'000;
  std::string transport = "shm";
  std::string consistency = "lin";
  bool epochs = false;
  bool drift = false;
  std::string trace_path;
  std::uint64_t trace_sample = 64;
  std::uint64_t l1_capacity = 0;
  L1Policy l1_policy = L1Policy::kLru;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--join") {
      join = true;
    } else if (const char* v = value("--params=")) {
      params_hex = v;
    } else if (const char* v = value("--out=")) {
      out_path = v;
    } else if (const char* v = value("--nodes=")) {
      nodes = std::atoi(v);
    } else if (const char* v = value("--ops=")) {
      ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--transport=")) {
      transport = v;
    } else if (const char* v = value("--consistency=")) {
      consistency = v;
    } else if (arg == "--epochs") {
      epochs = true;
    } else if (arg == "--drift") {
      drift = true;
    } else if (const char* v = value("--trace=")) {
      trace_path = v;
    } else if (const char* v = value("--trace-sample=")) {
      trace_sample = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--l1=")) {
      l1_capacity = std::strcmp(v, "off") == 0 ? 0
                    : std::strcmp(v, "on") == 0
                        ? 256
                        : std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--l1-policy=")) {
      if (!ParseL1Policy(v, &l1_policy)) {
        std::fprintf(stderr, "--l1-policy must be lru, clock or lfu\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (join) {
    LiveRackParams params;
    std::string error;
    if (!DecodeRackParams(params_hex, &params, &error) || out_path.empty()) {
      std::fprintf(stderr, "--join: %s\n",
                   error.empty() ? "missing --out" : error.c_str());
      return 2;
    }
    return RunRank(params, out_path);
  }

  LiveRackParams params;
  params.num_nodes = nodes;
  params.ops_per_node = ops;
  params.consistency =
      consistency == "sc" ? ConsistencyModel::kSc : ConsistencyModel::kLin;
  params.workload.keyspace = 8'192;
  params.workload.write_ratio = 0.20;
  params.workload.value_bytes = 24;
  params.cache_capacity = 128;
  params.window_per_node = 4;
  params.record_history = true;
  if (epochs) {
    params.online_topk = true;
    params.topk_epoch_requests = 10'000;
  }
  if (drift) {
    params.workload.drift_period_ops = 10'000;
    params.workload.drift_rank_shift = 16;
  }
  if (l1_capacity > 0) {
    // The L1 knobs ride the params blob to every rank.  A slice of per-node
    // rank skew gives each process a private warm tail worth caching; the
    // merged checker verdict below must stay clean exactly as without the
    // tier — that IS the demo.
    params.l1_capacity = l1_capacity;
    params.l1_policy = l1_policy;
    params.workload.node_rank_stride = params.workload.keyspace / 16;
  }
  // Tracing rides the params blob to every rank; each writes PATH.rank<N>
  // and rank 0 merges them below.
  params.trace_path = trace_path;
  params.trace_sample = trace_sample;
  if (!ParseTransportKind(transport, &params.transport.kind) ||
      params.transport.kind == TransportKind::kInproc) {
    std::fprintf(stderr, "--transport must be shm or socket\n");
    return 2;
  }
  // Per-run namespaces so concurrent racks on one host cannot collide.
  const std::string run_id = std::to_string(static_cast<long>(getpid()));
  params.transport.shm_name = "/cckvs_mp_" + run_id;
  params.transport.socket_path_base = "/tmp/cckvs_mp_" + run_id;
  // One clock epoch for the whole rack: merged histories stay comparable.
  params.clock_epoch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());

  std::printf("multiproc rack: %d ranks over %s, %llu ops/rank, %s%s%s", nodes,
              transport.c_str(), static_cast<unsigned long long>(ops),
              consistency.c_str(), epochs ? ", online epochs" : "",
              drift ? ", drift" : "");
  if (l1_capacity > 0) {
    std::printf(", L1 %llu/%s", static_cast<unsigned long long>(l1_capacity),
                ToString(l1_policy));
  }
  std::printf("\n");

  auto rank_out = [&run_id](int rank) {
    return "/tmp/cckvs_mp_" + run_id + ".rank" + std::to_string(rank) + ".bin";
  };

  // Spawn ranks 1..N-1; this process is rank 0 (and, for shm, the creator —
  // rank 0 must construct its rack first, which LiveRack does below before
  // any child can finish attaching).
  std::vector<pid_t> children;
  for (int rank = 1; rank < nodes; ++rank) {
    LiveRackParams child = params;
    child.transport.rank = rank;
    std::string error;
    const pid_t pid =
        SpawnSelf({"--join", "--params=" + EncodeRackParams(child),
                   "--out=" + rank_out(rank)},
                  &error);
    if (pid < 0) {
      std::fprintf(stderr, "spawn rank %d: %s\n", rank, error.c_str());
      return 2;
    }
    children.push_back(pid);
  }

  params.transport.rank = 0;
  const int rc0 = RunRank(params, rank_out(0));

  bool all_ok = rc0 == 0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int code = -1;
    std::string error;
    if (!WaitExit(children[i], &code, &error)) {
      std::fprintf(stderr, "rank %zu: %s\n", i + 1, error.c_str());
      all_ok = false;
    } else if (code != 0) {
      std::fprintf(stderr, "rank %zu exited with %d\n", i + 1, code);
      all_ok = false;
    }
  }

  // Merge every rank's history and certify the whole multi-process run.
  History merged;
  std::uint64_t completed = 0;
  std::uint64_t rpcs = 0;
  for (int rank = 0; rank < nodes; ++rank) {
    RankArtifacts a;
    std::string error;
    if (!LoadRankArtifacts(rank_out(rank), &a, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      all_ok = false;
      continue;
    }
    completed += a.completed;
    rpcs += a.rpcs_sent;
    for (HistoryOp& op : a.history) {
      merged.Record(std::move(op));
    }
    std::remove(rank_out(rank).c_str());
  }

  std::printf("  completed %llu ops (%llu served over RPC), merged history: %zu ops\n",
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(rpcs), merged.size());

  if (!trace_path.empty()) {
    // Stitch the per-rank span files into one Chrome trace: ranks share the
    // TSC and the clock epoch, so events line up; RPC spans from different
    // ranks join by trace id.
    std::vector<std::string> rank_traces;
    rank_traces.reserve(static_cast<std::size_t>(nodes));
    for (int rank = 0; rank < nodes; ++rank) {
      rank_traces.push_back(trace_path + ".rank" + std::to_string(rank));
    }
    std::string error;
    if (MergeChromeTraces(rank_traces, trace_path, &error)) {
      std::printf("  trace: merged %d rank files into %s\n", nodes,
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "  trace merge failed: %s\n", error.c_str());
    }
  }

  if (!all_ok) {
    std::printf("  FAILED: at least one rank reported a transport error\n");
    return 1;
  }

  const std::string verdict = params.consistency == ConsistencyModel::kLin
                                  ? merged.CheckPerKeyLinearizability()
                                  : merged.CheckPerKeySequentialConsistency();
  const std::string atomicity = merged.CheckWriteAtomicity();
  if (!verdict.empty() || !atomicity.empty()) {
    std::printf("  CONSISTENCY VIOLATION: %s%s\n", verdict.c_str(),
                atomicity.c_str());
    return 1;
  }
  std::printf("  checkers: per-key %s OK, write atomicity OK\n",
              consistency.c_str());
  return 0;
}
