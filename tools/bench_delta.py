#!/usr/bin/env python3
"""Compare two bench-smoke JSON artifact directories and print a delta table.

Usage: bench_delta.py BASELINE_DIR CURRENT_DIR

Each directory holds one JSON file per bench binary, in the bench_util.h
WriteJson shape: {"meta": {...}, "entries": [{"label": ..., field: value}]}.
(The pre-metadata plain-array shape is accepted for old baselines.)

Entries are matched by (file, label); for each matched entry the key
throughput/latency fields are compared and reported as a GitHub-flavoured
markdown table.  Regressions beyond the warn threshold get a warning marker —
never a failure: smoke runs are short and noisy, the table is a reviewer
signal, not a gate.  Exit code is always 0.

Model-checker entries are the exception to "noisy": they are deterministic, so
two outcomes are HARD warnings (a prominent section plus ::warning:: GitHub
annotations on stderr):
  * any entry whose `violations` field is nonzero — an invariant broke;
  * a `states` count that shrank vs. the baseline — the verified scope got
    accidentally narrower (fewer interleavings explored ≠ safer).

The zero-alloc audit is deterministic too (an allocation either happens on the
steady-state path or it doesn't): any entry whose `hot_path_allocs` is nonzero
when the baseline's was zero (or absent) is a HARD warning — the hot path
started allocating again (docs/PERFORMANCE.md, "Zero-allocation audit").

Tracing is designed to be near-free (docs/OBSERVABILITY.md): any entry whose
`trace_overhead_pct` exceeds 5 is a HARD warning — the traced hot path got
measurably slower than the untraced one, which defeats always-on sampling.

The L1 tail cache must pay for itself (docs/ARCHITECTURE.md, "hierarchical
caching"): live_throughput's per-node-skew pair stamps the L1-on entry with
the paired off-run's whole-rack rate as `l1_off_mrps`.  Both halves of the
pair run in the same job seconds apart, so this is a same-machine A/B, not a
cross-run diff: an on-rate below the off-rate is a HARD warning — the private
tier made the rack slower than not having it.
"""

import json
import os
import sys

# (field, higher_is_better)
FIELDS = [
    ("mrps", True),
    ("hit_rate", True),
    ("p99_latency_us", False),
]
WARN_PCT = 10.0
TRACE_OVERHEAD_HARD_PCT = 5.0


def load_dir(path):
    """Returns {filename: {"meta": dict, "entries": {label: fields}}}."""
    out = {}
    if not os.path.isdir(path):
        return out
    for name in sorted(os.listdir(path)):
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(path, name)) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, list):  # pre-metadata artifact shape
            meta, entries = {}, doc
        else:
            meta, entries = doc.get("meta", {}), doc.get("entries", [])
        # Repeated labels (e.g. one bench sweeping a knob like coalescing
        # on/off without labelling the configs) must stay distinct rows, not
        # collapse onto the last occurrence: suffix repeats positionally so
        # baseline and current match up pairwise.
        by_label = {}
        for e in entries:
            if "label" not in e:
                continue
            label, n = e["label"], 2
            while label in by_label:
                label = f"{e['label']} #{n}"
                n += 1
            by_label[label] = e
        out[name] = {"meta": meta, "entries": by_label}
    return out


def fmt_delta(base, cur, higher_is_better):
    if base is None or cur is None:
        return "n/a", False
    if base == 0:
        return ("=" if cur == 0 else "new"), False
    pct = 100.0 * (cur - base) / abs(base)
    regressed = (-pct if higher_is_better else pct) > WARN_PCT
    return f"{pct:+.1f}%", regressed


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 0
    baseline = load_dir(sys.argv[1])
    current = load_dir(sys.argv[2])
    if not baseline:
        print(f"_No baseline artifacts in {sys.argv[1]}; nothing to compare._")
        return 0

    base_sha = next(
        (d["meta"].get("git_sha") for d in baseline.values() if d["meta"]), "unknown"
    )
    cur_sha = next(
        (d["meta"].get("git_sha") for d in current.values() if d["meta"]), "unknown"
    )
    print(f"### Bench smoke delta: `{base_sha}` → `{cur_sha}`")
    print()
    print("| bench | entry | " + " | ".join(f for f, _ in FIELDS) + " |")
    print("|---" * (2 + len(FIELDS)) + "|")

    warnings = 0
    rows = 0
    hard = []  # deterministic model-checker regressions: violations / scope shrink
    for name, cur_doc in sorted(current.items()):
        base_doc = baseline.get(name)
        short = name.removesuffix(".json")
        for label, cur_entry in cur_doc["entries"].items():
            if cur_entry.get("violations", 0) > 0:
                hard.append(
                    f"{short} `{label}`: violations={cur_entry['violations']:g} "
                    "— a model-checked invariant FAILED"
                )
            allocs = cur_entry.get("hot_path_allocs", 0)
            base_entry = (
                base_doc["entries"].get(label) if base_doc is not None else None
            )
            base_allocs = (
                base_entry.get("hot_path_allocs", 0) if base_entry else 0
            )
            if allocs > 0 and base_allocs == 0:
                hard.append(
                    f"{short} `{label}`: hot_path_allocs={allocs:g} "
                    "— the steady-state hot path regressed from zero allocations"
                )
            overhead = cur_entry.get("trace_overhead_pct")
            if overhead is not None and overhead > TRACE_OVERHEAD_HARD_PCT:
                hard.append(
                    f"{short} `{label}`: trace_overhead_pct={overhead:.1f} "
                    f"(limit {TRACE_OVERHEAD_HARD_PCT:.0f}) — sampled tracing "
                    "slowed the hot path beyond its budget"
                )
            l1_off = cur_entry.get("l1_off_mrps")
            if l1_off:
                l1_on = cur_entry.get("rack_mrps", cur_entry.get("mrps"))
                if l1_on is not None and l1_on < l1_off:
                    hard.append(
                        f"{short} `{label}`: rack_mrps={l1_on:.2f} < "
                        f"l1_off_mrps={l1_off:.2f} — the L1 tail cache made "
                        "the rack SLOWER than running without it (same-job "
                        "A/B pair, not cross-run noise)"
                    )
        if base_doc is None:
            print(f"| {name} | _(new bench)_ |" + " — |" * len(FIELDS))
            continue
        for label, base_entry in base_doc["entries"].items():
            if base_entry.get("states") and label not in cur_doc["entries"]:
                hard.append(
                    f"{short} `{label}`: model-checker scope disappeared "
                    f"(baseline explored {base_entry['states']:g} states) — "
                    "the verified scope got narrower"
                )
        for label, cur_entry in cur_doc["entries"].items():
            base_entry = base_doc["entries"].get(label)
            if base_entry is None:
                continue
            base_states = base_entry.get("states")
            cur_states = cur_entry.get("states")
            if base_states and cur_states is not None and cur_states < base_states:
                hard.append(
                    f"{short} `{label}`: states explored shrank "
                    f"{base_states:g} → {cur_states:g} — the verified scope "
                    "got narrower"
                )
            cells = []
            row_warn = False
            for field, higher in FIELDS:
                text, regressed = fmt_delta(
                    base_entry.get(field), cur_entry.get(field), higher
                )
                row_warn |= regressed
                cells.append(("⚠️ " if regressed else "") + text)
            warnings += row_warn
            rows += 1
            print(f"| {short} | {label} | " + " | ".join(cells) + " |")

    print()
    if hard:
        print("### 🛑 Hard warnings (deterministic results)")
        print()
        for msg in hard:
            print(f"- 🛑 {msg}")
            # GitHub annotation; stderr so it lands in the job log, not the
            # step summary this script's stdout is redirected into.
            print(f"::warning title=Deterministic regression::{msg}", file=sys.stderr)
        print()
    if warnings:
        print(
            f"_{warnings}/{rows} entries regressed more than {WARN_PCT:.0f}% — "
            "smoke windows are noisy; treat as a pointer, not a verdict._"
        )
    else:
        print(f"_No regressions beyond {WARN_PCT:.0f}% across {rows} entries._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
