#!/usr/bin/env bash
# Launch a multi-process live rack and certify it with the consistency
# checkers.  Thin wrapper over examples/multiproc_rack (which does the
# spawn-or-join orchestration itself); builds it first if needed.
#
#   tools/run_multiproc.sh                          # 4 ranks over shm
#   tools/run_multiproc.sh --transport=socket       # 4 ranks over UDS
#   tools/run_multiproc.sh --nodes=8 --ops=50000 --consistency=sc \
#       --epochs --drift
#
# All flags are forwarded to multiproc_rack.  Exit status is the rack's:
# 0 = healthy run, checkers clean.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
bin="$build_dir/examples/multiproc_rack"

if [[ ! -x "$bin" ]]; then
  echo "building multiproc_rack..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target multiproc_rack -j >/dev/null
fi

exec "$bin" "$@"
