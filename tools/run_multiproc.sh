#!/usr/bin/env bash
# Launch a multi-process live rack and certify it with the consistency
# checkers.  Thin wrapper over examples/multiproc_rack (which does the
# spawn-or-join orchestration itself); builds it first if needed.
#
#   tools/run_multiproc.sh                          # 4 ranks over shm
#   tools/run_multiproc.sh --transport=socket       # 4 ranks over UDS
#   tools/run_multiproc.sh --nodes=8 --ops=50000 --consistency=sc \
#       --epochs --drift
#   tools/run_multiproc.sh --trace-dir=/tmp/traces  # per-op distributed traces
#   tools/run_multiproc.sh --l1=256 --l1-policy=clock   # node-private L1 tails
#
# All flags are forwarded to multiproc_rack (including --trace=PATH and
# --trace-sample=N; rank 0 merges the per-rank span files into PATH itself.
# --l1=off|on|N and --l1-policy=lru|clock|lfu arm a node-private L1 tail
# cache in every rank — the params blob carries the knobs to the children —
# and the merged SC/Lin checkers certify the run with the tier serving).
# --trace-dir=DIR is wrapper sugar: it expands to --trace=DIR/rack_trace.json
# and lists the per-rank + merged trace files the run left behind.  Exit
# status is the rack's: 0 = healthy run, checkers clean.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
bin="$build_dir/examples/multiproc_rack"

trace_path=""
args=()
for arg in "$@"; do
  case "$arg" in
    --trace-dir=*)
      dir="${arg#--trace-dir=}"
      mkdir -p "$dir"
      trace_path="$dir/rack_trace.json"
      args+=("--trace=$trace_path")
      ;;
    --trace=*)
      trace_path="${arg#--trace=}"
      args+=("$arg")
      ;;
    *)
      args+=("$arg")
      ;;
  esac
done

if [[ ! -x "$bin" ]]; then
  echo "building multiproc_rack..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target multiproc_rack -j >/dev/null
fi

rc=0
"$bin" ${args+"${args[@]}"} || rc=$?

if [[ -n "$trace_path" ]]; then
  echo "trace files:" >&2
  ls -l "$trace_path" "$trace_path".rank* >&2 || true
  echo "inspect: python3 $repo_root/tools/trace_report.py $trace_path" >&2
fi

exit "$rc"
