#!/usr/bin/env python3
"""Summarize, validate or merge ccKVS Chrome trace-event files.

The live rack's tracer (src/runtime/tracing.h) exports one Chrome
trace-event JSON per process: {"traceEvents": [...]} with "X" complete
events for spans, "i" instants, and "s"/"f" flow events joining the
requester-side `rpc` span to the home-side `rpc_serve` span by trace id.
Open the file in chrome://tracing or Perfetto for the visual timeline;
this tool gives the terminal view.

Usage:
  trace_report.py TRACE.json             # per-kind latency table + timelines
  trace_report.py --check TRACE.json     # strict validation; exit 1 on failure
  trace_report.py --merge OUT.json IN1.json IN2.json ...

Summary mode prints:
  * a per-kind table (count, mean/p50/p99/max duration) over all spans;
  * the slowest sampled ops with their child spans (rpc legs, gated waits);
  * the epoch-transition timeline: per epoch, the announce, each node's
    install duration, barrier wait, and every gate_closed span's duration.

Check mode (CI: bench-smoke runs it on the traced artifact) asserts:
  * the file parses as a Chrome trace object with a traceEvents list;
  * every event has the required keys for its phase and µs timestamps;
  * durations are non-negative and args carry the trace/span id strings;
  * every `rpc` span whose trace has a remote home joins an `rpc_serve`
    span with the same trace id (the cross-process stitching invariant)
    whenever any rpc_serve events exist at all.
"""

import argparse
import json
import sys
from collections import defaultdict

REQUIRED_X = ("name", "ph", "pid", "tid", "ts", "dur")
REQUIRED_I = ("name", "ph", "pid", "tid", "ts")

TRANSITION_KINDS = (
    "announce",
    "epoch_install",
    "barrier_wait",
    "gate_closed",
    "peer_installed",
    "fill_applied",
)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError(f"{path}: not a Chrome trace object with traceEvents")
    return doc["traceEvents"]


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(p * (len(sorted_vals) - 1)))
    return sorted_vals[idx]


def spans_of(events):
    return [e for e in events if e.get("ph") == "X"]


def instants_of(events):
    return [e for e in events if e.get("ph") == "i"]


def summarize(events):
    by_kind = defaultdict(list)
    for e in spans_of(events):
        by_kind[e["name"]].append(float(e.get("dur", 0.0)))
    for e in instants_of(events):
        by_kind[e["name"]]  # count instants too (zero-duration rows)
        by_kind[e["name"]].append(0.0)

    print(f"{'kind':<16}{'count':>8}{'mean us':>12}{'p50 us':>12}"
          f"{'p99 us':>12}{'max us':>12}")
    for kind in sorted(by_kind):
        durs = sorted(by_kind[kind])
        mean = sum(durs) / len(durs)
        print(f"{kind:<16}{len(durs):>8}{mean:>12.2f}"
              f"{percentile(durs, 0.50):>12.2f}"
              f"{percentile(durs, 0.99):>12.2f}{durs[-1]:>12.2f}")

    # Slowest sampled ops with their child spans, joined by trace id.
    ops = [e for e in spans_of(events) if e["name"] == "op"]
    children = defaultdict(list)
    for e in spans_of(events):
        if e["name"] == "op":
            continue
        trace = e.get("args", {}).get("trace")
        if trace and trace != "0x0":
            children[trace].append(e)
    ops.sort(key=lambda e: float(e.get("dur", 0.0)), reverse=True)
    if ops:
        print("\nslowest sampled ops:")
        for e in ops[:10]:
            trace = e.get("args", {}).get("trace", "?")
            legs = children.get(trace, [])
            legs.sort(key=lambda c: float(c.get("ts", 0.0)))
            detail = ", ".join(
                f"{c['name']}@{c.get('pid', '?')}/{c.get('tid', '?')}"
                f" {float(c.get('dur', 0.0)):.1f}us"
                for c in legs
            )
            print(f"  {float(e['dur']):>10.1f}us  trace {trace} "
                  f"node {e.get('tid')}" + (f"  [{detail}]" if detail else ""))

    timeline = transition_timeline(events)
    if timeline:
        print("\nepoch transitions:")
        for epoch in sorted(timeline):
            rows = timeline[epoch]
            print(f"  epoch {epoch}:")
            for line in rows:
                print(f"    {line}")


def transition_timeline(events):
    """Groups transition spans/instants by epoch -> human lines."""
    out = defaultdict(list)
    for e in events:
        if e.get("name") not in TRANSITION_KINDS:
            continue
        args = e.get("args", {})
        node = f"pid {e.get('pid')}/node {e.get('tid')}"
        name = e["name"]
        if name == "announce":
            out[args.get("a0")].append(f"announce at {node} ({args.get('a1')} keys)")
        elif name == "epoch_install":
            out[args.get("a0")].append(
                f"install at {node}: {float(e.get('dur', 0.0)):.1f}us"
                f" ({args.get('a1')} deferred)")
        elif name == "barrier_wait":
            out[args.get("a0")].append(
                f"barrier at {node}: {float(e.get('dur', 0.0)):.1f}us")
        elif name == "gate_closed":
            out[args.get("a1")].append(
                f"gate key {args.get('a0')} at {node}: "
                f"{float(e.get('dur', 0.0)):.1f}us closed")
    return out


def check(paths):
    failures = []
    rpc_traces = set()
    serve_traces = set()
    total = 0
    for path in paths:
        try:
            events = load(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            failures.append(str(err))
            continue
        for i, e in enumerate(events):
            where = f"{path}[{i}]"
            ph = e.get("ph")
            if ph not in ("X", "i", "s", "f", "M"):
                failures.append(f"{where}: unknown phase {ph!r}")
                continue
            if ph == "M":
                continue
            required = REQUIRED_X if ph == "X" else REQUIRED_I
            missing = [k for k in required if k not in e]
            if missing:
                failures.append(f"{where}: {ph} event missing {missing}")
                continue
            if ph == "X" and float(e["dur"]) < 0:
                failures.append(f"{where}: negative duration {e['dur']}")
            if float(e["ts"]) < 0:
                failures.append(f"{where}: negative timestamp {e['ts']}")
            if ph in ("s", "f") and "id" not in e:
                failures.append(f"{where}: flow event without id")
            if ph in ("X", "i"):
                total += 1
                args = e.get("args")
                if not isinstance(args, dict) or "trace" not in args or "span" not in args:
                    failures.append(f"{where}: span without trace/span args")
                    continue
                trace = args["trace"]
                if e["name"] == "rpc" and trace != "0x0":
                    rpc_traces.add(trace)
                elif e["name"] == "rpc_serve" and trace != "0x0":
                    serve_traces.add(trace)

    # Cross-process stitching: whenever home-side serve spans exist at all,
    # at least one requester rpc span must join one by trace id.  (rpc spans
    # without a matching serve are legitimate: the ring on the home rank may
    # have wrapped past that op.)
    if serve_traces and rpc_traces and not (rpc_traces & serve_traces):
        failures.append(
            f"no rpc span joins any rpc_serve span by trace id "
            f"({len(rpc_traces)} rpc vs {len(serve_traces)} rpc_serve traces)"
        )

    joined = len(rpc_traces & serve_traces)
    if failures:
        print(f"FAIL: {len(failures)} problem(s) across {len(paths)} file(s):")
        for msg in failures[:20]:
            print(f"  - {msg}")
        if len(failures) > 20:
            print(f"  ... and {len(failures) - 20} more")
        return 1
    print(f"OK: {total} spans across {len(paths)} file(s), "
          f"{joined} rpc/rpc_serve trace(s) stitched")
    return 0


def merge(out_path, inputs):
    events = []
    for path in inputs:
        events.extend(load(path))
    with open(out_path, "w") as f:
        f.write('{"traceEvents":[\n')
        f.write(",\n".join(json.dumps(e, separators=(",", ":")) for e in events))
        f.write("\n]}\n")
    print(f"merged {len(inputs)} file(s), {len(events)} events -> {out_path}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--check", action="store_true",
                        help="validate instead of summarize; exit 1 on failure")
    parser.add_argument("--merge", metavar="OUT",
                        help="merge the input files into OUT")
    parser.add_argument("paths", nargs="+", help="trace file(s)")
    args = parser.parse_args()

    if args.merge:
        return merge(args.merge, args.paths)
    if args.check:
        return check(args.paths)
    events = []
    for path in args.paths:
        events.extend(load(path))
    summarize(events)
    return 0


if __name__ == "__main__":
    sys.exit(main())
